(* Tests for the LP layer: linear-expression algebra, the two-phase
   simplex, and the hinge/abs reductions used by SherLock's encoding. *)

open Sherlock_lp

let check = Alcotest.check

let feq = Alcotest.float 1e-6

(* --- Linexpr --- *)

let eval_at assign e = Linexpr.eval (fun v -> List.assoc v assign) e

let test_linexpr_basic () =
  let e = Linexpr.(add (var 0) (var ~coeff:2.0 1)) in
  check feq "eval" 8.0 (eval_at [ (0, 2.0); (1, 3.0) ] e);
  check feq "const" 0.0 (Linexpr.constant e);
  check feq "coeff" 2.0 (Linexpr.coeff e 1);
  check feq "absent coeff" 0.0 (Linexpr.coeff e 5)

let test_linexpr_merge () =
  let e = Linexpr.(add (var 0) (var ~coeff:(-1.0) 0)) in
  check Alcotest.int "cancelled terms dropped" 0 (List.length (Linexpr.terms e))

let test_linexpr_scale_neg () =
  let e = Linexpr.(scale 2.0 (sub (var 0) (const 3.0))) in
  check feq "scaled" 4.0 (eval_at [ (0, 5.0) ] e);
  check feq "neg" (-4.0) (eval_at [ (0, 5.0) ] (Linexpr.neg e))

let test_linexpr_sum () =
  let e = Linexpr.sum [ Linexpr.var 0; Linexpr.var 1; Linexpr.const 1.0 ] in
  check feq "sum" 6.0 (eval_at [ (0, 2.0); (1, 3.0) ] e)

let test_linexpr_zero_coeff () =
  check Alcotest.int "zero coeff var is zero" 0
    (List.length (Linexpr.terms (Linexpr.var ~coeff:0.0 3)))

(* --- Simplex on known programs --- *)

let solve_simple () =
  (* min -x - y s.t. x + 2y <= 4; 3x + y <= 6 => x=1.6 y=1.2 obj=-2.8 *)
  match
    Simplex.solve ~num_vars:2
      ~objective:[ (0, -1.0); (1, -1.0) ]
      [
        { Simplex.row = [ (0, 1.0); (1, 2.0) ]; relation = Simplex.Le; rhs = 4.0 };
        { Simplex.row = [ (0, 3.0); (1, 1.0) ]; relation = Simplex.Le; rhs = 6.0 };
      ]
  with
  | Simplex.Optimal { objective; solution } ->
    check feq "objective" (-2.8) objective;
    check feq "x" 1.6 solution.(0);
    check feq "y" 1.2 solution.(1)
  | _ -> Alcotest.fail "expected optimum"

let solve_equality () =
  (* min x s.t. x + y = 3, y <= 2 => x = 1 *)
  match
    Simplex.solve ~num_vars:2 ~objective:[ (0, 1.0) ]
      [
        { Simplex.row = [ (0, 1.0); (1, 1.0) ]; relation = Simplex.Eq; rhs = 3.0 };
        { Simplex.row = [ (1, 1.0) ]; relation = Simplex.Le; rhs = 2.0 };
      ]
  with
  | Simplex.Optimal { objective; _ } -> check feq "objective" 1.0 objective
  | _ -> Alcotest.fail "expected optimum"

let solve_infeasible () =
  match
    Simplex.solve ~num_vars:1 ~objective:[ (0, 1.0) ]
      [
        { Simplex.row = [ (0, 1.0) ]; relation = Simplex.Ge; rhs = 5.0 };
        { Simplex.row = [ (0, 1.0) ]; relation = Simplex.Le; rhs = 1.0 };
      ]
  with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let solve_unbounded () =
  match Simplex.solve ~num_vars:1 ~objective:[ (0, -1.0) ] [] with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let solve_negative_rhs () =
  (* min x s.t. -x <= -2 (i.e. x >= 2) *)
  match
    Simplex.solve ~num_vars:1 ~objective:[ (0, 1.0) ]
      [ { Simplex.row = [ (0, -1.0) ]; relation = Simplex.Le; rhs = -2.0 } ]
  with
  | Simplex.Optimal { objective; _ } -> check feq "objective" 2.0 objective
  | _ -> Alcotest.fail "expected optimum"

let solve_degenerate () =
  (* Redundant constraints must not cycle (Bland's rule). *)
  match
    Simplex.solve ~num_vars:2
      ~objective:[ (0, -1.0) ]
      [
        { Simplex.row = [ (0, 1.0) ]; relation = Simplex.Le; rhs = 1.0 };
        { Simplex.row = [ (0, 1.0) ]; relation = Simplex.Le; rhs = 1.0 };
        { Simplex.row = [ (0, 1.0); (1, 1.0) ]; relation = Simplex.Le; rhs = 1.0 };
      ]
  with
  | Simplex.Optimal { objective; _ } -> check feq "objective" (-1.0) objective
  | _ -> Alcotest.fail "expected optimum"

(* --- Problem builder --- *)

let test_problem_hinge () =
  (* min h, h >= 1 - a, a <= 0.3 => h = 0.7 *)
  let p = Problem.create () in
  let a = Problem.add_var p ~ub:0.3 "a" in
  let _ = Problem.hinge p ~weight:1.0 "h" Linexpr.(sub (const 1.0) (var a)) in
  match Problem.solve p with
  | Problem.Solved obj, v ->
    check feq "objective" 0.7 obj;
    check feq "a at ub" 0.3 (v a)
  | _ -> Alcotest.fail "expected solution"

let test_problem_hinge_slack () =
  (* When the hinge argument is negative the hinge is 0. *)
  let p = Problem.create () in
  let a = Problem.add_var p ~ub:2.0 "a" in
  Problem.add_ge p (Linexpr.var a) 2.0;
  let _ = Problem.hinge p ~weight:1.0 "h" Linexpr.(sub (const 1.0) (var a)) in
  match Problem.solve p with
  | Problem.Solved obj, _ -> check feq "objective" 0.0 obj
  | _ -> Alcotest.fail "expected solution"

let test_problem_abs () =
  (* min |x - 2| + 0.1 x over x in [0, 5] => x = 2 *)
  let p = Problem.create () in
  let x = Problem.add_var p ~ub:5.0 "x" in
  let _ = Problem.abs p ~weight:1.0 "t" Linexpr.(sub (var x) (const 2.0)) in
  Problem.add_objective p (Linexpr.var ~coeff:0.1 x);
  match Problem.solve p with
  | Problem.Solved obj, v ->
    check feq "x" 2.0 (v x);
    check feq "objective" 0.2 obj
  | _ -> Alcotest.fail "expected solution"

let test_problem_abs_negative_side () =
  (* min |x - 2| with x forced above 3 => value 1. *)
  let p = Problem.create () in
  let x = Problem.add_var p ~ub:10.0 "x" in
  Problem.add_ge p (Linexpr.var x) 3.0;
  let t = Problem.abs p ~weight:1.0 "t" Linexpr.(sub (var x) (const 2.0)) in
  match Problem.solve p with
  | Problem.Solved _, v -> check feq "abs value" 1.0 (v t)
  | _ -> Alcotest.fail "expected solution"

let test_problem_names () =
  let p = Problem.create () in
  let x = Problem.add_var p "myvar" in
  check Alcotest.string "name" "myvar" (Problem.name p x);
  check Alcotest.int "count" 1 (Problem.num_vars p)

let test_problem_eq () =
  let p = Problem.create () in
  let x = Problem.add_var p "x" in
  let y = Problem.add_var p ~ub:2.0 "y" in
  Problem.add_eq p Linexpr.(add (var x) (var y)) 3.0;
  Problem.add_objective p (Linexpr.var x);
  match Problem.solve p with
  | Problem.Solved obj, v ->
    check feq "objective" 1.0 obj;
    check feq "y" 2.0 (v y)
  | _ -> Alcotest.fail "expected solution"

let test_problem_constant_folding () =
  (* e <= rhs with a constant inside e. *)
  let p = Problem.create () in
  let x = Problem.add_var p "x" in
  Problem.add_ge p Linexpr.(add (var x) (const 1.0)) 3.0;
  Problem.add_objective p (Linexpr.var x);
  match Problem.solve p with
  | Problem.Solved obj, _ -> check feq "objective" 2.0 obj
  | _ -> Alcotest.fail "expected solution"

(* --- Properties --- *)

(* Random feasible LPs: the returned solution satisfies every constraint. *)
let prop_solution_feasible =
  let gen =
    QCheck.Gen.(
      let* nvars = int_range 1 4 in
      let* nconstrs = int_range 1 5 in
      let* rows =
        list_repeat nconstrs
          (let* coeffs = list_repeat nvars (float_range (-3.0) 3.0) in
           let* rhs = float_range 0.5 10.0 in
           return (coeffs, rhs))
      in
      let* obj = list_repeat nvars (float_range 0.0 2.0) in
      return (nvars, rows, obj))
  in
  QCheck.Test.make ~name:"simplex solution satisfies Le constraints" ~count:200
    (QCheck.make gen)
    (fun (nvars, rows, obj) ->
      (* All constraints are <= with positive rhs, so x = 0 is feasible and
         the minimization of a non-negative objective is bounded. *)
      let constrs =
        List.map
          (fun (coeffs, rhs) ->
            {
              Simplex.row = List.mapi (fun i c -> (i, c)) coeffs;
              relation = Simplex.Le;
              rhs;
            })
          rows
      in
      let objective = List.mapi (fun i c -> (i, c)) obj in
      match Simplex.solve ~num_vars:nvars ~objective constrs with
      | Simplex.Optimal { solution; _ } ->
        List.for_all
          (fun (coeffs, rhs) ->
            let lhs =
              List.fold_left ( +. ) 0.0
                (List.mapi (fun i c -> c *. solution.(i)) coeffs)
            in
            lhs <= rhs +. 1e-6)
          rows
        && Array.for_all (fun x -> x >= -1e-9) solution
      | Simplex.Infeasible | Simplex.Unbounded -> false)

(* A minimized non-negative objective over Le constraints with rhs >= 0 is
   zero (x = 0 is optimal). *)
let prop_zero_optimum =
  QCheck.Test.make ~name:"nonneg objective over Le cone solves to 0" ~count:100
    QCheck.(pair (int_range 1 4) (list_of_size (QCheck.Gen.int_range 1 4) (float_range 0.0 5.0)))
    (fun (nvars, obj) ->
      let objective = List.mapi (fun i c -> (i, c)) (List.filteri (fun i _ -> i < nvars) obj) in
      match Simplex.solve ~num_vars:nvars ~objective [] with
      | Simplex.Optimal { objective = v; _ } -> abs_float v < 1e-9
      | _ -> false)

(* hinge computes max(0, c - x) at the optimum for fixed x. *)
let prop_hinge_exact =
  QCheck.Test.make ~name:"hinge equals max(0, e) at optimum" ~count:200
    QCheck.(pair (float_range 0.0 2.0) (float_range 0.0 2.0))
    (fun (c, xval) ->
      let p = Problem.create () in
      let x = Problem.add_var p ~ub:5.0 "x" in
      Problem.add_eq p (Linexpr.var x) xval;
      let h = Problem.hinge p ~weight:1.0 "h" Linexpr.(sub (const c) (var x)) in
      match Problem.solve p with
      | Problem.Solved _, v -> abs_float (v h -. Float.max 0.0 (c -. xval)) < 1e-6
      | _ -> false)

(* abs computes |e| at the optimum for fixed inputs. *)
let prop_abs_exact =
  QCheck.Test.make ~name:"abs equals |e| at optimum" ~count:200
    QCheck.(pair (float_range 0.0 4.0) (float_range 0.0 4.0))
    (fun (a, b) ->
      let p = Problem.create () in
      let x = Problem.add_var p ~ub:10.0 "x" in
      let y = Problem.add_var p ~ub:10.0 "y" in
      Problem.add_eq p (Linexpr.var x) a;
      Problem.add_eq p (Linexpr.var y) b;
      let t = Problem.abs p ~weight:1.0 "t" Linexpr.(sub (var x) (var y)) in
      match Problem.solve p with
      | Problem.Solved _, v -> abs_float (v t -. abs_float (a -. b)) < 1e-6
      | _ -> false)

let prop_linexpr_add_commutes =
  let gen_expr =
    QCheck.Gen.(
      let* terms = list_size (int_range 0 5) (pair (int_range 0 4) (float_range (-5.) 5.)) in
      let* c = float_range (-5.) 5. in
      return (terms, c))
  in
  let to_expr (terms, c) =
    Linexpr.add (Linexpr.const c)
      (Linexpr.sum (List.map (fun (v, k) -> Linexpr.var ~coeff:k v) terms))
  in
  QCheck.Test.make ~name:"linexpr addition commutes" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_expr gen_expr))
    (fun (e1, e2) ->
      let a = Linexpr.add (to_expr e1) (to_expr e2) in
      let b = Linexpr.add (to_expr e2) (to_expr e1) in
      let assign v = float_of_int (v + 1) in
      abs_float (Linexpr.eval assign a -. Linexpr.eval assign b) < 1e-9)

(* --- Presolve --- *)

let test_presolve_duplicate_hinge () =
  (* Two hinges with identical bodies merge into one row whose penalty
     column carries the summed weight; the optimum is unchanged. *)
  let p = Problem.create () in
  let x = Problem.add_var p ~ub:1.0 "x" in
  let _ = Problem.hinge p ~weight:1.0 "h1" Linexpr.(sub (const 1.0) (var x)) in
  let _ = Problem.hinge p ~weight:2.0 "h2" Linexpr.(sub (const 1.0) (var x)) in
  Problem.add_objective p (Linexpr.var ~coeff:10.0 x);
  match Problem.solve p with
  | Problem.Solved obj, _ ->
    check feq "objective" 3.0 obj;
    check Alcotest.bool "rows merged" true
      ((Problem.last_info p).presolve_removed_rows > 0)
  | _ -> Alcotest.fail "expected solution"

let test_presolve_forced_fix () =
  (* A singleton equality pins x; presolve substitutes it out and the
     restored assignment still reports the forced value. *)
  let p = Problem.create () in
  let x = Problem.add_var p "x" in
  let y = Problem.add_var p ~ub:4.0 "y" in
  Problem.add_eq p (Linexpr.var x) 2.0;
  Problem.add_ge p Linexpr.(add (var x) (var y)) 5.0;
  Problem.add_objective p Linexpr.(add (var x) (var y));
  match Problem.solve p with
  | Problem.Solved obj, v ->
    check feq "objective" 5.0 obj;
    check feq "x" 2.0 (v x);
    check feq "y" 3.0 (v y);
    check Alcotest.bool "var fixed" true
      ((Problem.last_info p).presolve_fixed_vars > 0)
  | _ -> Alcotest.fail "expected solution"

let test_presolve_empty_rows () =
  let run rhs =
    Presolve.run ~num_vars:1 ~objective:[ (0, 1.0) ]
      [
        { Simplex.row = []; relation = Simplex.Le; rhs };
        { Simplex.row = [ (0, 1.0) ]; relation = Simplex.Le; rhs = 3.0 };
      ]
  in
  let ok = run 5.0 in
  check Alcotest.bool "vacuous empty row dropped" true
    (ok.Presolve.r_stats.removed_rows >= 1 && not ok.Presolve.r_infeasible);
  let bad = run (-1.0) in
  check Alcotest.bool "violated empty row is infeasible" true
    bad.Presolve.r_infeasible

(* --- LU factorization --- *)

(* Dense reference basis: [cols.(k).(row)] is the column at position k. *)
let lu_col cols k f = Array.iteri (fun row v -> if v <> 0.0 then f row v) cols.(k)

let mul_b cols x =
  let m = Array.length cols in
  let r = Array.make m 0.0 in
  Array.iteri
    (fun k col ->
      Array.iteri (fun row v -> r.(row) <- r.(row) +. (v *. x.(k))) col)
    cols;
  r

let mul_bt cols y =
  Array.map
    (fun col ->
      let s = ref 0.0 in
      Array.iteri (fun row v -> s := !s +. (v *. y.(row))) col;
      !s)
    cols

let max_err a b =
  let e = ref 0.0 in
  Array.iteri (fun i v -> e := Float.max !e (abs_float (v -. b.(i)))) a;
  !e

let test_lu_roundtrip_known () =
  (* Zero on the leading diagonal forces a row permutation. *)
  let cols = [| [| 0.0; 2.0; 1.0 |]; [| 1.0; 1.0; 0.0 |]; [| 0.0; 3.0; 4.0 |] |] in
  match Lu.factorize ~m:3 ~col:(lu_col cols) with
  | None -> Alcotest.fail "nonsingular basis must factorize"
  | Some t ->
    check Alcotest.int "size" 3 (Lu.size t);
    let b = [| 1.0; -2.0; 3.0 |] in
    check Alcotest.bool "ftran solves B x = b" true
      (max_err (mul_b cols (Lu.ftran t b)) b < 1e-9);
    let c = [| 0.5; 1.0; -1.5 |] in
    check Alcotest.bool "btran solves B^T y = c" true
      (max_err (mul_bt cols (Lu.btran t c)) c < 1e-9)

let test_lu_eta_update () =
  let cols = [| [| 4.0; 1.0; 0.0 |]; [| 0.0; 3.0; 1.0 |]; [| 2.0; 0.0; 5.0 |] |] in
  match Lu.factorize ~m:3 ~col:(lu_col cols) with
  | None -> Alcotest.fail "factorize"
  | Some t ->
    let a = [| 1.0; 2.0; -1.0 |] in
    let w = Lu.ftran t a in
    check Alcotest.bool "pivot direction usable" true (abs_float w.(1) > 1e-9);
    Lu.update t ~r:1 ~w;
    check Alcotest.int "one eta term" 1 (Lu.eta_count t);
    let cols' = [| cols.(0); a; cols.(2) |] in
    let b = [| -1.0; 0.5; 2.0 |] in
    check Alcotest.bool "ftran tracks the replaced column" true
      (max_err (mul_b cols' (Lu.ftran t b)) b < 1e-9);
    let c = [| 2.0; -1.0; 0.25 |] in
    check Alcotest.bool "btran tracks the replaced column" true
      (max_err (mul_bt cols' (Lu.btran t c)) c < 1e-9)

let test_lu_singular () =
  let cols = [| [| 1.0; 0.0 |]; [| 2.0; 0.0 |] |] in
  match Lu.factorize ~m:2 ~col:(lu_col cols) with
  | None -> ()
  | Some _ -> Alcotest.fail "rank-deficient basis must not factorize"

let prop_lu_roundtrip =
  let gen =
    QCheck.Gen.(
      let* m = int_range 1 6 in
      let* entries = list_repeat (m * m) (float_range (-2.0) 2.0) in
      let* b = list_repeat m (float_range (-4.0) 4.0) in
      let* r = int_range 0 (m - 1) in
      let* newcol = list_repeat m (float_range (-2.0) 2.0) in
      return (m, entries, b, r, newcol))
  in
  QCheck.Test.make ~name:"lu ftran/btran invert random bases (incl. eta update)"
    ~count:300 (QCheck.make gen)
    (fun (m, entries, b, r, newcol) ->
      let e = Array.of_list entries in
      (* Diagonal dominance keeps the random basis far from singular. *)
      let cols =
        Array.init m (fun k ->
            Array.init m (fun row ->
                e.((k * m) + row) +. if row = k then 8.0 else 0.0))
      in
      let b = Array.of_list b in
      match Lu.factorize ~m ~col:(lu_col cols) with
      | None -> false
      | Some t ->
        let ok =
          max_err (mul_b cols (Lu.ftran t b)) b < 1e-6
          && max_err (mul_bt cols (Lu.btran t b)) b < 1e-6
        in
        let a =
          Array.init m (fun row ->
              List.nth newcol row +. if row = r then 8.0 else 0.0)
        in
        let w = Lu.ftran t a in
        if abs_float w.(r) < 1e-6 then ok
        else begin
          Lu.update t ~r ~w;
          let cols' = Array.mapi (fun k c -> if k = r then a else c) cols in
          ok
          && max_err (mul_b cols' (Lu.ftran t b)) b < 1e-6
          && max_err (mul_bt cols' (Lu.btran t b)) b < 1e-6
        end)

(* --- Engine behavior: refactorization, pivot cap, dual repair --- *)

(* min -sum x_i over a 6-cycle of pairwise caps: needs a handful of
   pivots under any pricing order, with optimum -3 (alternate 1, 0). *)
let pivoty_lp () =
  let n = 6 in
  let p = Problem.create () in
  let xs = Array.init n (fun i -> Problem.add_var p (Printf.sprintf "x%d" i)) in
  Array.iteri
    (fun i x ->
      Problem.add_le p Linexpr.(add (var x) (var xs.((i + 1) mod n))) 1.0)
    xs;
  Problem.add_objective p
    (Linexpr.sum
       (Array.to_list (Array.map (fun x -> Linexpr.var ~coeff:(-1.0) x) xs)));
  p

let test_refactor_threshold () =
  Fun.protect
    ~finally:(fun () ->
      Simplex.set_refactor_interval Simplex.default_refactor_interval)
    (fun () ->
      Simplex.set_refactor_interval 1;
      let p = pivoty_lp () in
      Problem.set_engine p Problem.Sparse;
      Problem.set_presolve p false;
      match Problem.solve p with
      | Problem.Solved obj, _ ->
        check feq "optimum unchanged by refactorization" (-3.0) obj;
        let info = Problem.last_info p in
        check Alcotest.bool "refactorized at least once" true
          (info.Problem.refactors >= 1);
        check Alcotest.bool "eta file never exceeds the interval" true
          (info.Problem.eta_len <= 1)
      | _ -> Alcotest.fail "expected solution")

(* The pivot cap surfaces as a non-raising [Aborted] status, and lifting
   the cap fully recovers — including on a state whose warm basis was
   invalidated by the abort. *)
let test_pivot_cap_aborts_and_recovers () =
  Fun.protect
    ~finally:(fun () -> Simplex.set_pivot_limit Simplex.default_pivot_limit)
    (fun () ->
      Simplex.set_pivot_limit 1;
      let p = pivoty_lp () in
      (match Problem.solve p with
      | Problem.Aborted, v -> check feq "aborted assignment is zero" 0.0 (v 0)
      | _ -> Alcotest.fail "expected Aborted under a 1-pivot cap");
      let q = pivoty_lp () in
      (match Problem.solve_incremental q with
      | Problem.Aborted, _ -> ()
      | _ -> Alcotest.fail "expected Aborted (incremental)");
      Simplex.set_pivot_limit Simplex.default_pivot_limit;
      (match Problem.solve_incremental q with
      | Problem.Solved obj, _ -> check feq "warm state recovered" (-3.0) obj
      | _ -> Alcotest.fail "expected recovery after lifting the cap");
      match Problem.solve (pivoty_lp ()) with
      | Problem.Solved obj, _ -> check feq "one-shot recovered" (-3.0) obj
      | _ -> Alcotest.fail "expected one-shot recovery")

(* Appending a cut that chops off the optimum exercises the dual-simplex
   repair: the reoptimize must stay warm (no cold restart) and leave the
   basis dual-feasible under the certified cost vector. *)
let test_dual_repair_after_cut () =
  let outcome, _, s =
    Simplex.solve_tableau ~num_vars:2
      ~objective:[ (0, -1.0); (1, -1.0) ]
      [
        { Simplex.row = [ (0, 1.0); (1, 2.0) ]; relation = Simplex.Le; rhs = 4.0 };
        { Simplex.row = [ (0, 3.0); (1, 1.0) ]; relation = Simplex.Le; rhs = 6.0 };
      ]
  in
  (match outcome with
  | Simplex.Optimal { objective; _ } -> check feq "initial optimum" (-2.8) objective
  | _ -> Alcotest.fail "expected optimum");
  ignore (Simplex.add_row s [ (0, 1.0); (1, 1.0) ] Simplex.Le 2.0);
  (match Simplex.reoptimize s with
  | `Optimal obj -> check feq "repaired optimum" (-2.0) obj
  | _ -> Alcotest.fail "expected optimum after the cut");
  let st = Simplex.last_stats s in
  check Alcotest.bool "solved warm" true st.Simplex.warm;
  check Alcotest.int "no cold restart" 0 st.Simplex.cold_restarts;
  check Alcotest.bool "dual feasible under the certified costs" true
    (Simplex.dual_feasible s)

let test_dual_repair_with_bounds () =
  let outcome, _, s =
    Simplex.solve_tableau
      ~ub:[| 1.0; infinity |]
      ~num_vars:2
      ~objective:[ (0, -2.0); (1, -1.0) ]
      [ { Simplex.row = [ (0, 1.0); (1, 1.0) ]; relation = Simplex.Le; rhs = 1.5 } ]
  in
  (match outcome with
  | Simplex.Optimal { objective; solution } ->
    check feq "initial optimum" (-2.5) objective;
    check feq "x at its bound" 1.0 solution.(0)
  | _ -> Alcotest.fail "expected optimum");
  ignore (Simplex.add_row s [ (0, 1.0); (1, 1.0) ] Simplex.Le 1.2);
  (match Simplex.reoptimize s with
  | `Optimal obj -> check feq "repaired optimum" (-2.2) obj
  | _ -> Alcotest.fail "expected optimum after tightening");
  check Alcotest.bool "dual feasible with a column at its bound" true
    (Simplex.dual_feasible s);
  check feq "x still at its bound" 1.0 (Simplex.value s 0);
  check Alcotest.bool "x flagged at upper" true (Simplex.is_at_upper s 0)

(* A capped variable and no other rows: the sparse engines solve it with
   a bound flip on an empty basis; the dense oracle still sees the cap
   as an explicit row. *)
let test_bound_only_program () =
  let make () =
    let p = Problem.create () in
    let x = Problem.add_var p ~ub:2.0 "x" in
    Problem.add_objective p (Linexpr.var ~coeff:(-1.0) x);
    (p, x)
  in
  List.iter
    (fun engine ->
      let p, x = make () in
      Problem.set_engine p engine;
      match Problem.solve p with
      | Problem.Solved obj, v ->
        check feq "objective" (-2.0) obj;
        check feq "x at cap" 2.0 (v x)
      | _ -> Alcotest.fail "expected solution")
    [ Problem.Dense; Problem.Sparse ];
  let p, x = make () in
  match Problem.solve_incremental p with
  | Problem.Solved obj, v ->
    check feq "objective (incremental)" (-2.0) obj;
    check feq "x at cap (incremental)" 2.0 (v x)
  | _ -> Alcotest.fail "expected solution"

let test_bound_rows_saved () =
  let p = Problem.create () in
  let x = Problem.add_var p ~ub:1.0 "x" in
  let y = Problem.add_var p "y" in
  Problem.add_le p Linexpr.(add (var x) (var y)) 1.5;
  Problem.add_objective p
    Linexpr.(add (var ~coeff:(-2.0) x) (var ~coeff:(-1.0) y));
  (match Problem.solve p with
  | Problem.Solved _, _ -> ()
  | _ -> Alcotest.fail "expected solution");
  check Alcotest.int "cap kept out of the sparse matrix" 1
    (Problem.last_info p).Problem.bound_rows_saved;
  check Alcotest.int "but the cap is still a visible row" 2 (Problem.num_rows p)

(* --- Engine equivalence --- *)

let gen_lp =
  QCheck.Gen.(
    let* nvars = int_range 1 5 in
    let* nconstrs = int_range 1 6 in
    (* Finite caps exercise the bounded-variable path: column bounds in
       the sparse engines, explicit rows in the dense oracle. *)
    let* ubs =
      list_repeat nvars
        (frequency [ (2, return infinity); (1, float_range 0.2 2.5) ])
    in
    let* rows =
      list_repeat nconstrs
        (let* coeffs = list_repeat nvars (float_range (-3.0) 3.0) in
         let* rel = oneofl [ `Le; `Ge; `Eq ] in
         (* The occasional zero rhs lands on degenerate bases — the
            classic cycling trap for the ratio test. *)
         let* rhs = frequency [ (5, float_range (-2.0) 6.0); (1, return 0.0) ] in
         return (coeffs, rel, rhs))
    in
    (* Non-negative costs keep the minimum bounded, so outcomes are
       Solved or Infeasible (Ge/Eq rows can cut off the whole orthant). *)
    let* obj = list_repeat nvars (float_range 0.0 2.0) in
    return (nvars, ubs, rows, obj))

let build_problem (nvars, ubs, rows, obj) =
  let p = Problem.create () in
  let ubs = Array.of_list ubs in
  let xs =
    Array.init nvars (fun i ->
        let name = Printf.sprintf "x%d" i in
        if Float.is_finite ubs.(i) then Problem.add_var p ~ub:ubs.(i) name
        else Problem.add_var p name)
  in
  List.iter
    (fun (coeffs, rel, rhs) ->
      let e =
        Linexpr.sum (List.mapi (fun i c -> Linexpr.var ~coeff:c xs.(i)) coeffs)
      in
      match rel with
      | `Le -> Problem.add_le p e rhs
      | `Ge -> Problem.add_ge p e rhs
      | `Eq -> Problem.add_eq p e rhs)
    rows;
  Problem.add_objective p
    (Linexpr.sum (List.mapi (fun i c -> Linexpr.var ~coeff:c xs.(i)) obj));
  p

let same_status a b =
  match (a, b) with
  | Problem.Solved x, Problem.Solved y -> abs_float (x -. y) < 1e-6
  | Problem.Infeasible, Problem.Infeasible -> true
  | Problem.Unbounded, Problem.Unbounded -> true
  | _ -> false

(* The dense seed engine, the sparse engine (with presolve), and the
   incremental revised simplex agree on outcome and objective. *)
let prop_engines_agree =
  QCheck.Test.make ~name:"dense, sparse, and incremental engines agree"
    ~count:300 (QCheck.make gen_lp) (fun lp ->
      let solve_with engine =
        let p = build_problem lp in
        Problem.set_engine p engine;
        fst (Problem.solve p)
      in
      let dense = solve_with Problem.Dense in
      let sparse = solve_with Problem.Sparse in
      let incr = fst (Problem.solve_incremental (build_problem lp)) in
      same_status dense sparse && same_status dense incr)

(* Warm reoptimization after growing the program (new row, extra
   objective term) lands on the same optimum as a cold one-shot solve of
   the final program. *)
let prop_warm_matches_oneshot =
  let gen =
    QCheck.Gen.(
      let* lp = gen_lp in
      let* extra_coeffs = list_repeat 5 (float_range (-2.0) 2.0) in
      let* extra_rhs = float_range 0.0 4.0 in
      return (lp, extra_coeffs, extra_rhs))
  in
  QCheck.Test.make ~name:"warm reoptimize matches one-shot solve" ~count:300
    (QCheck.make gen)
    (fun (lp, extra_coeffs, extra_rhs) ->
      let nvars, _, _, _ = lp in
      let extra_expr () =
        Linexpr.sum
          (List.filteri (fun i _ -> i < nvars) extra_coeffs
          |> List.mapi (fun i c -> Linexpr.var ~coeff:c i))
      in
      let grow p =
        Problem.add_le p (extra_expr ()) extra_rhs;
        Problem.add_objective p (Linexpr.var ~coeff:0.5 0)
      in
      let p = build_problem lp in
      ignore (Problem.solve_incremental p);
      grow p;
      let warm = fst (Problem.solve_incremental p) in
      let q = build_problem lp in
      grow q;
      same_status warm (fst (Problem.solve q)))

let qcheck = List.map QCheck_alcotest.to_alcotest

(* --- Dual values / reduced costs (provenance capture) --- *)

(* minimize -2x - y  s.t.  x <= 1 (ub row), x + y <= 1.5.  Optimum at
   x = 1, y = 0.5: both rows binding.  With y basic the shared row's dual
   is -1, and the ub cap's dual is -2 - (-1) = -1 — so the provenance
   margin (its negation) is 1. *)
let duals_problem () =
  let p = Problem.create () in
  let x = Problem.add_var p ~ub:1.0 "x" in
  let y = Problem.add_var p "y" in
  Problem.add_le ~tag:"cap" p Linexpr.(add (var x) (var y)) 1.5;
  Problem.add_objective p Linexpr.(add (var ~coeff:(-2.0) x) (var ~coeff:(-1.0) y));
  (p, x, y)

let check_ub_dual p x =
  match Problem.last_duals p with
  | None -> Alcotest.fail "expected captured duals"
  | Some d ->
    let ub =
      match Problem.ub_row p x with
      | Some r -> r
      | None -> Alcotest.fail "x has an ub row"
    in
    check feq "ub dual (margin = 1)" (-1.0) d.Problem.d_rows.(ub);
    check Alcotest.int "one dual per row" (Problem.num_rows p)
      (Array.length d.Problem.d_rows);
    check Alcotest.int "one reduced cost per var" (Problem.num_vars p)
      (Array.length d.Problem.d_vars)

let test_duals_oneshot () =
  let p, x, _ = duals_problem () in
  Problem.set_capture_duals p true;
  (match Problem.solve p with
  | Problem.Solved obj, v ->
    check feq "objective" (-2.5) obj;
    check feq "x" 1.0 (v x)
  | _ -> Alcotest.fail "expected solution");
  check_ub_dual p x

let test_duals_oneshot_no_presolve () =
  let p, x, _ = duals_problem () in
  Problem.set_presolve p false;
  Problem.set_capture_duals p true;
  (match Problem.solve p with
  | Problem.Solved _, _ -> ()
  | _ -> Alcotest.fail "expected solution");
  check_ub_dual p x

let test_duals_incremental () =
  let p, x, _ = duals_problem () in
  Problem.set_capture_duals p true;
  (match Problem.solve_incremental p with
  | Problem.Solved obj, _ -> check feq "objective" (-2.5) obj
  | _ -> Alcotest.fail "expected solution");
  check_ub_dual p x

let test_duals_reduced_cost () =
  (* minimize 2x + y  s.t.  x + y >= 1: the optimum takes y = 1 and
     leaves x nonbasic at 0 with reduced cost 2 - 1 = 1 (both columns
     hit only the shared row, so the value is convention-independent). *)
  let p = Problem.create () in
  let x = Problem.add_var p "x" in
  let y = Problem.add_var p "y" in
  Problem.add_ge p Linexpr.(add (var x) (var y)) 1.0;
  Problem.add_objective p Linexpr.(add (var ~coeff:2.0 x) (var y));
  Problem.set_presolve p false;
  Problem.set_capture_duals p true;
  (match Problem.solve p with
  | Problem.Solved obj, v ->
    check feq "objective" 1.0 obj;
    check feq "x stays 0" 0.0 (v x);
    check feq "y" 1.0 (v y)
  | _ -> Alcotest.fail "expected solution");
  match Problem.last_duals p with
  | None -> Alcotest.fail "expected captured duals"
  | Some d ->
    check feq "reduced cost of x" 1.0 d.Problem.d_vars.(x);
    check feq "reduced cost of basic y" 0.0 d.Problem.d_vars.(y)

let test_duals_capture_off () =
  let p, _, _ = duals_problem () in
  (match Problem.solve p with
  | Problem.Solved _, _ -> ()
  | _ -> Alcotest.fail "expected solution");
  check Alcotest.bool "no duals when capture off" true
    (Problem.last_duals p = None)

let test_duals_none_when_infeasible () =
  let p = Problem.create () in
  let x = Problem.add_var p ~ub:1.0 "x" in
  Problem.add_ge p (Linexpr.var x) 2.0;
  Problem.add_objective p (Linexpr.var x);
  Problem.set_capture_duals p true;
  (match Problem.solve p with
  | Problem.Infeasible, _ -> ()
  | _ -> Alcotest.fail "expected infeasible");
  check Alcotest.bool "no duals without an optimum" true
    (Problem.last_duals p = None)

let test_duals_incremental_matches_oneshot () =
  let duals p solve =
    Problem.set_capture_duals p true;
    (match solve p with
    | Problem.Solved _, _ -> ()
    | _ -> Alcotest.fail "expected solution");
    match Problem.last_duals p with
    | Some d -> d
    | None -> Alcotest.fail "expected captured duals"
  in
  let p1, _, _ = duals_problem () in
  let p2, _, _ = duals_problem () in
  let a = duals p1 Problem.solve in
  let b = duals p2 Problem.solve_incremental in
  Array.iteri
    (fun i v -> check feq (Printf.sprintf "row dual %d" i) v b.Problem.d_rows.(i))
    a.Problem.d_rows;
  Array.iteri
    (fun i v -> check feq (Printf.sprintf "reduced cost %d" i) v b.Problem.d_vars.(i))
    a.Problem.d_vars

let () =
  Alcotest.run "lp"
    [
      ( "linexpr",
        [
          Alcotest.test_case "basic" `Quick test_linexpr_basic;
          Alcotest.test_case "merge cancels" `Quick test_linexpr_merge;
          Alcotest.test_case "scale/neg" `Quick test_linexpr_scale_neg;
          Alcotest.test_case "sum" `Quick test_linexpr_sum;
          Alcotest.test_case "zero coeff" `Quick test_linexpr_zero_coeff;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "simple optimum" `Quick solve_simple;
          Alcotest.test_case "equality" `Quick solve_equality;
          Alcotest.test_case "infeasible" `Quick solve_infeasible;
          Alcotest.test_case "unbounded" `Quick solve_unbounded;
          Alcotest.test_case "negative rhs normalization" `Quick solve_negative_rhs;
          Alcotest.test_case "degenerate no-cycle" `Quick solve_degenerate;
        ] );
      ( "problem",
        [
          Alcotest.test_case "hinge active" `Quick test_problem_hinge;
          Alcotest.test_case "hinge slack" `Quick test_problem_hinge_slack;
          Alcotest.test_case "abs" `Quick test_problem_abs;
          Alcotest.test_case "abs negative side" `Quick test_problem_abs_negative_side;
          Alcotest.test_case "names" `Quick test_problem_names;
          Alcotest.test_case "equality" `Quick test_problem_eq;
          Alcotest.test_case "constant folding" `Quick test_problem_constant_folding;
        ] );
      ( "presolve",
        [
          Alcotest.test_case "duplicate hinge merge" `Quick
            test_presolve_duplicate_hinge;
          Alcotest.test_case "forced variable fix" `Quick test_presolve_forced_fix;
          Alcotest.test_case "empty rows" `Quick test_presolve_empty_rows;
        ] );
      ( "lu",
        Alcotest.test_case "ftran/btran round trip" `Quick test_lu_roundtrip_known
        :: Alcotest.test_case "eta update" `Quick test_lu_eta_update
        :: Alcotest.test_case "singular basis" `Quick test_lu_singular
        :: qcheck [ prop_lu_roundtrip ] );
      ( "engine",
        [
          Alcotest.test_case "refactorization threshold" `Quick
            test_refactor_threshold;
          Alcotest.test_case "pivot cap aborts and recovers" `Quick
            test_pivot_cap_aborts_and_recovers;
          Alcotest.test_case "dual repair after a cut" `Quick
            test_dual_repair_after_cut;
          Alcotest.test_case "dual repair with bounds" `Quick
            test_dual_repair_with_bounds;
          Alcotest.test_case "bound-only program" `Quick test_bound_only_program;
          Alcotest.test_case "bound rows saved" `Quick test_bound_rows_saved;
        ] );
      ( "duals",
        [
          Alcotest.test_case "one-shot ub margin" `Quick test_duals_oneshot;
          Alcotest.test_case "one-shot without presolve" `Quick
            test_duals_oneshot_no_presolve;
          Alcotest.test_case "incremental ub margin" `Quick test_duals_incremental;
          Alcotest.test_case "reduced cost" `Quick test_duals_reduced_cost;
          Alcotest.test_case "capture off" `Quick test_duals_capture_off;
          Alcotest.test_case "none when infeasible" `Quick
            test_duals_none_when_infeasible;
          Alcotest.test_case "incremental matches one-shot" `Quick
            test_duals_incremental_matches_oneshot;
        ] );
      ( "properties",
        qcheck
          [
            prop_solution_feasible; prop_zero_optimum; prop_hinge_exact;
            prop_abs_exact; prop_linexpr_add_commutes; prop_engines_agree;
            prop_warm_matches_oneshot;
          ] );
    ]
