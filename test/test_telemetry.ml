(* The telemetry subsystem: span trees (well-nestedness, exception
   safety), the metrics registry (counters, power-of-two histograms, the
   Trace.Metrics bridge), and the Perfetto exporters (ordering and
   duration invariants as a qcheck property, plus a virtual-time
   Timeline smoke test). *)

open Sherlock_telemetry
module Tm = Metrics
module Log = Sherlock_trace.Log
module Tlog = Sherlock_telemetry.Log
module Event = Sherlock_trace.Event
module Opid = Sherlock_trace.Opid

let check = Alcotest.check

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* Run [f] with a fresh installed collector; always uninstalls. *)
let with_collector f =
  let c = Span.create_collector () in
  Span.set_collector (Some c);
  Fun.protect ~finally:(fun () -> Span.set_collector None) (fun () -> f c)

(* --- spans --- *)

let find name spans =
  match List.find_opt (fun (s : Span.closed) -> s.name = name) spans with
  | Some s -> s
  | None -> Alcotest.failf "span %s not closed" name

let test_span_nesting () =
  with_collector @@ fun c ->
  Span.with_span ~name:"outer" (fun () ->
      Span.with_span ~name:"inner" (fun () ->
          check Alcotest.int "depth inside" 2 (Span.open_depth ()));
      Span.with_span ~name:"sibling" ignore);
  let spans = Span.closed_spans c in
  check Alcotest.int "three spans" 3 (Span.span_count c);
  let outer = find "outer" spans in
  let inner = find "inner" spans in
  let sibling = find "sibling" spans in
  check Alcotest.(option int) "inner parent" (Some outer.id) inner.parent;
  check Alcotest.(option int) "sibling parent" (Some outer.id) sibling.parent;
  check Alcotest.(option int) "outer is root" None outer.parent;
  (* children close before the parent and lie inside its interval *)
  List.iter
    (fun (s : Span.closed) ->
      check Alcotest.bool (s.name ^ " starts after outer") true
        (s.start_s >= outer.start_s);
      check Alcotest.bool (s.name ^ " ends before outer") true
        (s.end_s <= outer.end_s))
    [ inner; sibling ];
  check Alcotest.int "nothing left open" 0 (Span.open_depth ())

exception Boom

let test_span_closes_on_exception () =
  with_collector @@ fun c ->
  (try
     Span.with_span ~name:"outer" (fun () ->
         Span.with_span ~name:"inner" (fun () -> raise Boom))
   with Boom -> ());
  let spans = Span.closed_spans c in
  check Alcotest.int "both spans closed" 2 (Span.span_count c);
  let outer = find "outer" spans and inner = find "inner" spans in
  check Alcotest.(option int) "parent chain survives" (Some outer.id)
    inner.parent;
  check Alcotest.int "stack unwound" 0 (Span.open_depth ());
  (* and the next span is a root again, not a child of the dead tree *)
  Span.with_span ~name:"after" ignore;
  check Alcotest.(option int) "fresh root" None (find "after" (Span.closed_spans c)).parent

let test_span_attrs () =
  with_collector @@ fun c ->
  Span.with_span ~name:"s" ~attrs:[ ("given", Span.Int 1) ] (fun () ->
      Span.add_attr "added" (Span.Str "late"));
  let s = find "s" (Span.closed_spans c) in
  check Alcotest.int "two attrs" 2 (List.length s.attrs);
  check Alcotest.bool "attachment order" true
    (s.attrs = [ ("given", Span.Int 1); ("added", Span.Str "late") ])

let test_span_no_collector () =
  Span.set_collector None;
  check Alcotest.(option int) "no collector" None
    (Option.map (fun _ -> 0) (Span.current_collector ()));
  (* with_span must be a pure passthrough: value, exception, no state *)
  check Alcotest.int "value passes" 7 (Span.with_span ~name:"x" (fun () -> 7));
  (try Span.with_span ~name:"x" (fun () -> raise Boom) with Boom -> ());
  check Alcotest.int "no open spans" 0 (Span.open_depth ())

(* --- metrics --- *)

let test_counter () =
  let r = Tm.create () in
  let c = Tm.counter ~registry:r "a" in
  Tm.Counter.incr c;
  Tm.Counter.incr ~by:41 c;
  check Alcotest.int "count" 42 (Tm.Counter.value c);
  check Alcotest.bool "get-or-create" true (c == Tm.counter ~registry:r "a");
  Tm.reset r;
  (* reset drops the instruments: the next lookup creates a fresh zero *)
  let c' = Tm.counter ~registry:r "a" in
  check Alcotest.bool "fresh after reset" false (c == c');
  check Alcotest.int "reset" 0 (Tm.Counter.value c')

let test_histogram () =
  let r = Tm.create () in
  let h = Tm.histogram ~registry:r "h" in
  check Alcotest.bool "empty mean is nan" true (Float.is_nan (Tm.Histogram.mean h));
  List.iter (fun v -> Tm.Histogram.observe_int h v) [ 1; 2; 4; 100; 1000 ];
  check Alcotest.int "count" 5 (Tm.Histogram.count h);
  check (Alcotest.float 1e-9) "sum" 1107.0 (Tm.Histogram.sum h);
  check (Alcotest.float 1e-9) "min" 1.0 (Tm.Histogram.min_value h);
  check (Alcotest.float 1e-9) "max" 1000.0 (Tm.Histogram.max_value h);
  let p50 = Tm.Histogram.percentile h 0.5 in
  check Alcotest.bool "p50 within range" true (p50 >= 1.0 && p50 <= 1000.0);
  check Alcotest.bool "p100 clamps to max" true
    (Tm.Histogram.percentile h 1.0 <= 1000.0)

let test_registry_listing () =
  let r = Tm.create () in
  ignore (Tm.counter ~registry:r "z");
  ignore (Tm.counter ~registry:r "a");
  ignore (Tm.histogram ~registry:r "m");
  check
    Alcotest.(list string)
    "counters sorted" [ "a"; "z" ]
    (List.map Tm.Counter.name (Tm.counters r));
  check Alcotest.int "histograms" 1 (List.length (Tm.histograms r));
  (* the summary printer renders without raising *)
  check Alcotest.bool "summary non-empty" true
    (String.length (Format.asprintf "%a" Tm.pp_summary r) > 0)

let test_trace_metrics_bridge () =
  let m = Sherlock_trace.Metrics.create () in
  m.events <- 10;
  m.pairs_considered <- 4;
  m.pairs_capped <- 1;
  m.windows <- 3;
  m.races <- 2;
  m.run_s <- 0.5;
  let r = Tm.create () in
  Sherlock_trace.Metrics.to_registry r m;
  let counter name = Tm.Counter.value (Tm.counter ~registry:r name) in
  check Alcotest.int "events" 10 (counter "trace.events");
  check Alcotest.int "pairs" 4 (counter "trace.pairs_considered");
  check Alcotest.int "capped" 1 (counter "trace.pairs_capped");
  check Alcotest.int "windows" 3 (counter "trace.windows");
  check Alcotest.int "races" 2 (counter "trace.races");
  let h = Tm.histogram ~registry:r "trace.run_s" in
  check Alcotest.int "run_s observed" 1 (Tm.Histogram.count h)

(* --- gauges --- *)

let test_gauge () =
  let r = Tm.create () in
  let g = Tm.gauge ~registry:r "g" in
  Tm.Gauge.set g 5;
  Tm.Gauge.add g 2;
  check Alcotest.int "cell value" 7 (Tm.Gauge.value g);
  check Alcotest.bool "get-or-create" true (g == Tm.gauge ~registry:r "g");
  let f = Tm.gauge_fn ~registry:r "f" (fun () -> 42) in
  check Alcotest.int "callback value" 42 (Tm.Gauge.value f);
  Tm.Gauge.set f 0;
  check Alcotest.int "set is a no-op on callbacks" 42 (Tm.Gauge.value f);
  let boom = Tm.gauge_fn ~registry:r "boom" (fun () -> failwith "x") in
  check Alcotest.int "raising callback reads 0" 0 (Tm.Gauge.value boom);
  check
    Alcotest.(list string)
    "gauges sorted" [ "boom"; "f"; "g" ]
    (List.map Tm.Gauge.name (Tm.gauges r));
  (* re-installation rebinds the closure (the post-reset contract) *)
  let f' = Tm.gauge_fn ~registry:r "f" (fun () -> 1) in
  check Alcotest.int "rebound callback" 1 (Tm.Gauge.value f');
  Tm.reset r;
  check Alcotest.int "reset drops gauges" 0 (List.length (Tm.gauges r))

(* --- snapshot ring --- *)

let test_snapshot_ring () =
  let r = Tm.create () in
  let c = Tm.counter ~registry:r "c" in
  let g = Tm.gauge ~registry:r "g" in
  let h = Tm.histogram ~registry:r "h" in
  let ring = Snapshot.create ~capacity:2 ~registry:r () in
  Tm.Counter.incr ~by:5 c;
  Tm.Gauge.set g 3;
  Tm.Histogram.observe_int h 10;
  let p0 = Snapshot.take ~label:"first" ring in
  check Alcotest.int "seq starts at 0" 0 p0.Snapshot.p_seq;
  check
    Alcotest.(list (pair string int))
    "counters captured" [ ("c", 5) ] p0.Snapshot.p_counters;
  check
    Alcotest.(list (pair string int))
    "gauges captured" [ ("g", 3) ] p0.Snapshot.p_gauges;
  (match p0.Snapshot.p_hists with
  | [ ("h", s) ] ->
    check Alcotest.int "hist count" 1 s.Snapshot.h_count;
    check (Alcotest.float 1e-9) "hist sum" 10.0 s.Snapshot.h_sum
  | _ -> Alcotest.fail "one histogram expected");
  Tm.Counter.incr ~by:7 c;
  ignore (Snapshot.take ring);
  Tm.Counter.incr (Tm.counter ~registry:r "born");
  let p2 = Snapshot.take ~label:"last" ring in
  (* capacity 2: the first point has been evicted *)
  check Alcotest.int "length capped" 2 (Snapshot.length ring);
  (match Snapshot.points ring with
  | [ a; b ] ->
    check Alcotest.int "oldest retained is #1" 1 a.Snapshot.p_seq;
    check Alcotest.int "newest is #2" 2 b.Snapshot.p_seq
  | _ -> Alcotest.fail "two points expected");
  (match Snapshot.latest ring with
  | Some p -> check Alcotest.string "latest label" "last" p.Snapshot.p_label
  | None -> Alcotest.fail "latest missing");
  let deltas = Snapshot.counter_delta ~older:p0 ~newer:p2 in
  check Alcotest.(option int) "existing counter delta" (Some 7)
    (List.assoc_opt "c" deltas);
  check Alcotest.(option int) "born counter deltas from 0" (Some 1)
    (List.assoc_opt "born" deltas);
  List.iter
    (fun (n, rate) ->
      check Alcotest.bool (n ^ " rate non-negative") true (rate >= 0.0))
    (Snapshot.rates ~older:p0 ~newer:p2);
  check Alcotest.bool "busy_seconds accumulated" true
    (Snapshot.busy_seconds ring > 0.0)

let test_snapshot_callback_and_install () =
  let r = Tm.create () in
  ignore (Tm.counter ~registry:r "c");
  let seen = ref [] in
  let ring =
    Snapshot.create ~registry:r
      ~on_snapshot:(fun p -> seen := p.Snapshot.p_label :: !seen)
      ()
  in
  Snapshot.install ring;
  Fun.protect ~finally:Snapshot.uninstall @@ fun () ->
  check Alcotest.bool "installed" true (Snapshot.installed () <> None);
  (match Snapshot.take_installed ~label:"via-plane" () with
  | Some p -> check Alcotest.string "label" "via-plane" p.Snapshot.p_label
  | None -> Alcotest.fail "installed ring did not snapshot");
  check Alcotest.(list string) "callback saw the snapshot" [ "via-plane" ] !seen;
  Snapshot.uninstall ();
  check Alcotest.bool "uninstalled" true (Snapshot.take_installed () = None)

let test_snapshot_ticker_and_dump () =
  let r = Tm.create () in
  ignore (Tm.counter ~registry:r "c");
  let ring = Snapshot.create ~registry:r () in
  Snapshot.install ring;
  Fun.protect
    ~finally:(fun () ->
      Snapshot.stop_ticker ();
      Snapshot.uninstall ())
  @@ fun () ->
  Snapshot.start_ticker ~interval_ms:10 ();
  let deadline = Unix.gettimeofday () +. 2.0 in
  while Snapshot.length ring = 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  check Alcotest.bool "ticker snapshots" true (Snapshot.length ring > 0);
  (* an on-demand dump is serviced even with periodic snapshots off *)
  Snapshot.stop_ticker ();
  Snapshot.start_ticker ~interval_ms:0 ();
  Snapshot.request_dump ();
  let deadline = Unix.gettimeofday () +. 2.0 in
  let has_dump () =
    List.exists
      (fun (p : Snapshot.point) -> p.p_label = "sigusr1")
      (Snapshot.points ring)
  in
  while (not (has_dump ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  check Alcotest.bool "dump request serviced" true (has_dump ());
  Snapshot.stop_ticker ();
  (* stop is idempotent *)
  Snapshot.stop_ticker ()

let test_runtime_gauges () =
  let r = Tm.create () in
  Snapshot.install_runtime_gauges ~registry:r ();
  let value name =
    match
      List.find_opt (fun g -> Tm.Gauge.name g = name) (Tm.gauges r)
    with
    | Some g -> Tm.Gauge.value g
    | None -> Alcotest.failf "gauge %s not installed" name
  in
  check Alcotest.bool "minor collections move" true (value "gc.minor_collections" >= 0);
  check Alcotest.bool "heap words positive" true (value "gc.heap_words" > 0);
  check Alcotest.bool "recommended domains" true (value "domains.recommended" >= 1);
  check Alcotest.bool "pool idle" true (value "pool.domains.busy" >= 0)

(* Satellite: counters sampled while worker domains hammer them.  Every
   snapshot-to-snapshot delta must be non-negative (counters are
   monotone) and the final capture must equal exactly what the domains
   added. *)
let prop_snapshot_concurrent_monotone =
  QCheck.Test.make ~name:"snapshots under concurrent counter updates"
    ~count:20
    QCheck.(pair (int_range 1 3) (int_range 50 400))
    (fun (ndomains, increments) ->
      let r = Tm.create () in
      let names = [| "a"; "b"; "c" |] in
      let ring = Snapshot.create ~capacity:64 ~registry:r () in
      Array.iter (fun n -> ignore (Tm.counter ~registry:r n)) names;
      let p0 = Snapshot.take ring in
      let workers =
        Array.init ndomains (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to increments do
                  Tm.Counter.incr
                    (Tm.counter ~registry:r names.((d + i) mod Array.length names))
                done))
      in
      (* sample concurrently with the writers *)
      for _ = 1 to 10 do
        ignore (Snapshot.take ring);
        Domain.cpu_relax ()
      done;
      Array.iter Domain.join workers;
      let final = Snapshot.take ring in
      let points = Snapshot.points ring in
      let rec consecutive_ok = function
        | a :: (b :: _ as rest) ->
          List.for_all (fun (_, d) -> d >= 0) (Snapshot.counter_delta ~older:a ~newer:b)
          && consecutive_ok rest
        | _ -> true
      in
      let total =
        List.fold_left (fun acc (_, v) -> acc + v) 0 final.Snapshot.p_counters
      in
      consecutive_ok points
      && total = ndomains * increments
      && List.for_all (fun (_, d) -> d >= 0)
           (Snapshot.counter_delta ~older:p0 ~newer:final))

(* --- OpenMetrics --- *)

let test_openmetrics_roundtrip () =
  let r = Tm.create () in
  Tm.Counter.incr ~by:42 (Tm.counter ~registry:r "windows.span_cache.hit");
  Tm.Counter.incr ~by:9 (Tm.counter ~registry:r "lp.pivots.total");
  Tm.Gauge.set (Tm.gauge ~registry:r "pool.domains.live") 4;
  let h = Tm.histogram ~registry:r "lp.pivots" in
  List.iter (Tm.Histogram.observe_int h) [ 1; 3; 3; 100 ];
  let text = Openmetrics.to_string ~registry:r () in
  check Alcotest.bool "ends with EOF" true
    (let t = String.trim text in
     String.length t >= 5 && String.sub t (String.length t - 5) 5 = "# EOF");
  match Openmetrics.parse text with
  | Error msg -> Alcotest.failf "exporter output rejected: %s" msg
  | Ok families ->
    let find name =
      match
        List.find_opt (fun (f : Openmetrics.family) -> f.f_name = name) families
      with
      | Some f -> f
      | None -> Alcotest.failf "family %s missing" name
    in
    (* every family and series name is legal *)
    List.iter
      (fun (f : Openmetrics.family) ->
        check Alcotest.bool (f.f_name ^ " name valid") true
          (Openmetrics.valid_name f.f_name);
        List.iter
          (fun (s : Openmetrics.sample) ->
            check Alcotest.bool (s.s_series ^ " series valid") true
              (Openmetrics.valid_name s.s_series))
          f.f_samples)
      families;
    let hit = find "sherlock_windows_span_cache_hit_total" in
    check Alcotest.bool "counter typed" true (hit.f_type = Openmetrics.MCounter);
    (match hit.f_samples with
    | [ s ] -> check (Alcotest.float 1e-9) "counter value" 42.0 s.s_value
    | _ -> Alcotest.fail "counter sample count");
    (* a name already ending in .total is not double-suffixed *)
    let pivots_total = find "sherlock_lp_pivots_total" in
    (match pivots_total.f_samples with
    | [ s ] -> check (Alcotest.float 1e-9) "total counter value" 9.0 s.s_value
    | _ -> Alcotest.fail "pivots.total sample count");
    let live = find "sherlock_pool_domains_live" in
    check Alcotest.bool "gauge typed" true (live.f_type = Openmetrics.MGauge);
    let ph = find "sherlock_lp_pivots" in
    check Alcotest.bool "histogram typed" true (ph.f_type = Openmetrics.MHistogram);
    let series suffix =
      List.filter
        (fun (s : Openmetrics.sample) -> s.s_series = "sherlock_lp_pivots" ^ suffix)
        ph.f_samples
    in
    (match series "_count" with
    | [ s ] -> check (Alcotest.float 1e-9) "_count" 4.0 s.s_value
    | _ -> Alcotest.fail "_count missing");
    (match series "_sum" with
    | [ s ] -> check (Alcotest.float 1e-9) "_sum" 107.0 s.s_value
    | _ -> Alcotest.fail "_sum missing");
    let buckets = series "_bucket" in
    check Alcotest.bool "has buckets" true (List.length buckets >= 2);
    (* buckets are cumulative and end at +Inf = count *)
    (match
       List.find_opt
         (fun (s : Openmetrics.sample) -> s.s_labels = [ ("le", "+Inf") ])
         buckets
     with
    | Some s -> check (Alcotest.float 1e-9) "+Inf bucket" 4.0 s.s_value
    | None -> Alcotest.fail "+Inf bucket missing");
    let le_values =
      List.filter_map
        (fun (s : Openmetrics.sample) ->
          match s.s_labels with
          | [ ("le", "+Inf") ] -> None
          | [ ("le", le) ] -> Some (float_of_string le, s.s_value)
          | _ -> None)
        buckets
    in
    let rec cumulative = function
      | (_, a) :: ((_, b) :: _ as rest) -> a <= b && cumulative rest
      | _ -> true
    in
    check Alcotest.bool "buckets cumulative" true
      (cumulative (List.sort compare le_values))

let test_openmetrics_atomic_write_and_parse_file () =
  let r = Tm.create () in
  Tm.Counter.incr ~by:3 (Tm.counter ~registry:r "c");
  let path = Filename.temp_file "sherlock_om" ".txt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Openmetrics.write_atomic path (Openmetrics.to_string ~registry:r ());
  check Alcotest.bool "no tmp litter" false (Sys.file_exists (path ^ ".tmp"));
  match Openmetrics.parse_file path with
  | Error msg -> Alcotest.failf "parse_file: %s" msg
  | Ok families -> check Alcotest.bool "parsed something" true (families <> [])

let test_openmetrics_rejects_malformed () =
  let reject text why =
    match Openmetrics.parse text with
    | Ok _ -> Alcotest.failf "accepted %s" why
    | Error msg -> check Alcotest.bool (why ^ " has message") true (msg <> "")
  in
  reject "sherlock_x 1\n" "missing EOF";
  reject "# TYPE 9bad counter\n# EOF\n" "invalid metric name";
  reject "Bad-Name 1\n# EOF\n" "invalid series name";
  reject "sherlock_x notanumber\n# EOF\n" "bad sample value";
  reject "# TYPE x flavor\n# EOF\n" "unknown TYPE";
  reject "# EOF\nsherlock_x 1\n" "content after EOF";
  check Alcotest.bool "mangle produces valid names" true
    (Openmetrics.valid_name (Openmetrics.mangle "Weird.Name-with:Stuff/9"))

(* --- structured log --- *)

let test_log_jsonl () =
  let lines = ref [] in
  Tlog.set_writer (Some (fun l -> lines := l :: !lines));
  Fun.protect ~finally:(fun () -> Tlog.set_writer None) @@ fun () ->
  Tlog.set_level Tlog.Debug;
  check Alcotest.bool "enabled with sink" true (Tlog.enabled Tlog.Info);
  Tlog.warn "orch.run.failed"
    [
      ("test", Tlog.Str "quote\"and\nnewline");
      ("attempt", Tlog.Int 2);
      ("ratio", Tlog.Float 0.5);
      ("bad", Tlog.Float nan);
      ("flag", Tlog.Bool true);
    ];
  (match !lines with
  | [ line ] ->
    check Alcotest.bool "has event" true (contains line {|"event":"orch.run.failed"|});
    check Alcotest.bool "has level" true (contains line {|"level":"warn"|});
    check Alcotest.bool "escapes quotes" true (contains line {|quote\"and\nnewline|});
    check Alcotest.bool "int field" true (contains line {|"attempt":2|});
    check Alcotest.bool "nan is null" true (contains line {|"bad":null|});
    check Alcotest.bool "bool field" true (contains line {|"flag":true|});
    check Alcotest.bool "domain field" true (contains line {|"domain":|})
  | l -> Alcotest.failf "expected one line, got %d" (List.length l));
  (* threshold filters *)
  lines := [];
  Tlog.set_level Tlog.Warn;
  Tlog.info "dropped" [];
  Tlog.error "kept" [];
  check Alcotest.int "info filtered, error kept" 1 (List.length !lines);
  check Alcotest.bool "below threshold disabled" false (Tlog.enabled Tlog.Debug);
  Tlog.set_level Tlog.Debug

let test_log_no_sink_is_noop () =
  Tlog.set_writer None;
  check Alcotest.bool "disabled without sink" false (Tlog.enabled Tlog.Error);
  (* must not raise *)
  Tlog.error "into-the-void" [ ("k", Tlog.Int 1) ]

let test_log_level_parsing () =
  check Alcotest.bool "warn" true (Tlog.level_of_string "WARN" = Some Tlog.Warn);
  check Alcotest.bool "warning" true
    (Tlog.level_of_string "warning" = Some Tlog.Warn);
  check Alcotest.bool "garbage" true (Tlog.level_of_string "loud" = None);
  check Alcotest.string "name" "error" (Tlog.level_name Tlog.Error)

(* --- Perfetto export --- *)

(* Arbitrary events: a mix of every phase with scrambled timestamps and
   possibly-negative complete durations. *)
let arb_events =
  let open QCheck in
  let arb_event =
    map
      (fun (ts, dur, pick, tid) ->
        let ts = abs ts mod 10_000 in
        match pick mod 5 with
        | 0 -> Perfetto.complete ~name:"c" ~ts ~dur ~pid:1 ~tid ()
        | 1 -> Perfetto.instant ~name:"i" ~ts ~pid:1 ~tid ()
        | 2 -> Perfetto.flow_start ~id:(abs dur) ~ts ~pid:1 ~tid ()
        | 3 -> Perfetto.flow_end ~id:(abs dur) ~ts ~pid:1 ~tid ()
        | _ -> Perfetto.thread_name ~pid:1 ~tid "t")
      (quad int (int_range (-50) 5000) int (int_range 0 7))
  in
  list_of_size Gen.(int_range 0 60) arb_event

let prop_prepare_sorted_nonnegative =
  QCheck.Test.make ~name:"prepare: metadata first, sorted ts, dur >= 0"
    ~count:200 arb_events (fun events ->
      let prepared = Perfetto.prepare events in
      List.length prepared = List.length events
      &&
      let rec split_meta = function
        | { Perfetto.ph = Perfetto.Metadata; _ } :: rest -> split_meta rest
        | rest ->
          (* no metadata event may appear after the prefix *)
          List.for_all (fun (e : Perfetto.event) -> e.ph <> Perfetto.Metadata) rest
          &&
          let rec sorted = function
            | (a : Perfetto.event) :: (b : Perfetto.event) :: rest ->
              a.ts <= b.ts && sorted (b :: rest)
            | _ -> true
          in
          sorted rest
      in
      split_meta prepared
      && List.for_all
           (fun (e : Perfetto.event) ->
             match e.ph with Perfetto.Complete d -> d >= 0 | _ -> true)
           prepared)

let prop_of_spans_sorted_nonnegative =
  QCheck.Test.make ~name:"of_spans export: sorted with non-negative durations"
    ~count:50
    QCheck.(int_range 1 5)
    (fun depth ->
      let c = Span.create_collector () in
      Span.set_collector (Some c);
      Fun.protect ~finally:(fun () -> Span.set_collector None) @@ fun () ->
      let rec nest d =
        Span.with_span ~name:(Printf.sprintf "d%d" d) (fun () ->
            if d < depth then nest (d + 1))
      in
      nest 1;
      Span.with_span ~name:"tail" ignore;
      let events = Perfetto.prepare (Perfetto.of_spans c) in
      List.length
        (List.filter (fun (e : Perfetto.event) -> e.ph <> Perfetto.Metadata) events)
      = depth + 1
      && List.for_all
           (fun (e : Perfetto.event) ->
             match e.ph with Perfetto.Complete d -> d >= 0 | _ -> e.ts >= 0)
           events)

let test_json_escaping () =
  let s =
    Perfetto.to_string
      [
        Perfetto.instant ~name:"quote \" slash \\ newline \n"
          ~args:[ ("k", Perfetto.Str "tab\t") ]
          ~ts:1 ~pid:1 ~tid:1 ();
      ]
  in
  check Alcotest.bool "quote escaped" true (contains s {|quote \" slash|});
  check Alcotest.bool "backslash escaped" true (contains s {|slash \\ newline|});
  check Alcotest.bool "newline escaped" true (contains s {|newline \n|});
  check Alcotest.bool "tab escaped" true (contains s {|tab\t|})

(* --- virtual-time timeline --- *)

let test_timeline_export () =
  let open Sherlock_sim in
  let hooks, finish = Schedule.recorder () in
  let log =
    Runtime.run ~seed:3 ~hooks ~instrument:(Runtime.tracing ()) (fun () ->
        let cell = Heap.cell ~cls:"T" ~field:"x" 0 in
        let t =
          Threadlib.create ~delegate:("T", "Worker") (fun () ->
              Heap.write cell 1)
        in
        Threadlib.start t;
        ignore (Heap.read cell);
        Threadlib.join t)
  in
  let timelines =
    [
      {
        Sherlock_core.Timeline.test_name = "t";
        log;
        schedule = finish ~duration:log.Log.duration;
      };
    ]
  in
  let events =
    Sherlock_core.Timeline.export ~app:"unit" ~plan:Sherlock_core.Perturber.empty
      timelines
  in
  let has ph = List.exists (fun (e : Perfetto.event) -> e.ph = ph) events in
  check Alcotest.bool "has frames/slices" true
    (List.exists
       (fun (e : Perfetto.event) ->
         match e.ph with Perfetto.Complete _ -> true | _ -> false)
       events);
  check Alcotest.bool "names both threads" true
    (List.length
       (List.filter
          (fun (e : Perfetto.event) ->
            e.ph = Perfetto.Metadata && e.name = "thread_name")
          events)
     >= 4);
  (* read and write of T::x race within [near]: at least one flow arrow *)
  check Alcotest.bool "flow start" true
    (List.exists
       (fun (e : Perfetto.event) ->
         match e.ph with Perfetto.Flow_start _ -> true | _ -> false)
       events);
  check Alcotest.bool "flow end" true
    (List.exists
       (fun (e : Perfetto.event) ->
         match e.ph with Perfetto.Flow_end _ -> true | _ -> false)
       events);
  ignore has

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "telemetry"
    [
      ( "spans",
        [
          Alcotest.test_case "well-nested" `Quick test_span_nesting;
          Alcotest.test_case "closes on exception" `Quick test_span_closes_on_exception;
          Alcotest.test_case "attributes" `Quick test_span_attrs;
          Alcotest.test_case "no collector" `Quick test_span_no_collector;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "registry listing" `Quick test_registry_listing;
          Alcotest.test_case "trace bridge" `Quick test_trace_metrics_bridge;
          Alcotest.test_case "gauge" `Quick test_gauge;
        ] );
      ( "snapshot",
        Alcotest.test_case "ring retention and deltas" `Quick test_snapshot_ring
        :: Alcotest.test_case "callback and installed plane" `Quick
             test_snapshot_callback_and_install
        :: Alcotest.test_case "ticker and dump requests" `Quick
             test_snapshot_ticker_and_dump
        :: Alcotest.test_case "runtime gauges" `Quick test_runtime_gauges
        :: qcheck [ prop_snapshot_concurrent_monotone ] );
      ( "openmetrics",
        [
          Alcotest.test_case "export/parse round-trip" `Quick
            test_openmetrics_roundtrip;
          Alcotest.test_case "atomic write + parse_file" `Quick
            test_openmetrics_atomic_write_and_parse_file;
          Alcotest.test_case "rejects malformed input" `Quick
            test_openmetrics_rejects_malformed;
        ] );
      ( "log",
        [
          Alcotest.test_case "jsonl shape and escaping" `Quick test_log_jsonl;
          Alcotest.test_case "no sink is a no-op" `Quick test_log_no_sink_is_noop;
          Alcotest.test_case "level parsing" `Quick test_log_level_parsing;
        ] );
      ( "perfetto",
        Alcotest.test_case "json escaping" `Quick test_json_escaping
        :: qcheck
             [ prop_prepare_sorted_nonnegative; prop_of_spans_sorted_nonnegative ] );
      ("timeline", [ Alcotest.test_case "export" `Quick test_timeline_export ]);
    ]
