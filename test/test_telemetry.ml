(* The telemetry subsystem: span trees (well-nestedness, exception
   safety), the metrics registry (counters, power-of-two histograms, the
   Trace.Metrics bridge), and the Perfetto exporters (ordering and
   duration invariants as a qcheck property, plus a virtual-time
   Timeline smoke test). *)

open Sherlock_telemetry
module Tm = Metrics
module Log = Sherlock_trace.Log
module Event = Sherlock_trace.Event
module Opid = Sherlock_trace.Opid

let check = Alcotest.check

(* Run [f] with a fresh installed collector; always uninstalls. *)
let with_collector f =
  let c = Span.create_collector () in
  Span.set_collector (Some c);
  Fun.protect ~finally:(fun () -> Span.set_collector None) (fun () -> f c)

(* --- spans --- *)

let find name spans =
  match List.find_opt (fun (s : Span.closed) -> s.name = name) spans with
  | Some s -> s
  | None -> Alcotest.failf "span %s not closed" name

let test_span_nesting () =
  with_collector @@ fun c ->
  Span.with_span ~name:"outer" (fun () ->
      Span.with_span ~name:"inner" (fun () ->
          check Alcotest.int "depth inside" 2 (Span.open_depth ()));
      Span.with_span ~name:"sibling" ignore);
  let spans = Span.closed_spans c in
  check Alcotest.int "three spans" 3 (Span.span_count c);
  let outer = find "outer" spans in
  let inner = find "inner" spans in
  let sibling = find "sibling" spans in
  check Alcotest.(option int) "inner parent" (Some outer.id) inner.parent;
  check Alcotest.(option int) "sibling parent" (Some outer.id) sibling.parent;
  check Alcotest.(option int) "outer is root" None outer.parent;
  (* children close before the parent and lie inside its interval *)
  List.iter
    (fun (s : Span.closed) ->
      check Alcotest.bool (s.name ^ " starts after outer") true
        (s.start_s >= outer.start_s);
      check Alcotest.bool (s.name ^ " ends before outer") true
        (s.end_s <= outer.end_s))
    [ inner; sibling ];
  check Alcotest.int "nothing left open" 0 (Span.open_depth ())

exception Boom

let test_span_closes_on_exception () =
  with_collector @@ fun c ->
  (try
     Span.with_span ~name:"outer" (fun () ->
         Span.with_span ~name:"inner" (fun () -> raise Boom))
   with Boom -> ());
  let spans = Span.closed_spans c in
  check Alcotest.int "both spans closed" 2 (Span.span_count c);
  let outer = find "outer" spans and inner = find "inner" spans in
  check Alcotest.(option int) "parent chain survives" (Some outer.id)
    inner.parent;
  check Alcotest.int "stack unwound" 0 (Span.open_depth ());
  (* and the next span is a root again, not a child of the dead tree *)
  Span.with_span ~name:"after" ignore;
  check Alcotest.(option int) "fresh root" None (find "after" (Span.closed_spans c)).parent

let test_span_attrs () =
  with_collector @@ fun c ->
  Span.with_span ~name:"s" ~attrs:[ ("given", Span.Int 1) ] (fun () ->
      Span.add_attr "added" (Span.Str "late"));
  let s = find "s" (Span.closed_spans c) in
  check Alcotest.int "two attrs" 2 (List.length s.attrs);
  check Alcotest.bool "attachment order" true
    (s.attrs = [ ("given", Span.Int 1); ("added", Span.Str "late") ])

let test_span_no_collector () =
  Span.set_collector None;
  check Alcotest.(option int) "no collector" None
    (Option.map (fun _ -> 0) (Span.current_collector ()));
  (* with_span must be a pure passthrough: value, exception, no state *)
  check Alcotest.int "value passes" 7 (Span.with_span ~name:"x" (fun () -> 7));
  (try Span.with_span ~name:"x" (fun () -> raise Boom) with Boom -> ());
  check Alcotest.int "no open spans" 0 (Span.open_depth ())

(* --- metrics --- *)

let test_counter () =
  let r = Tm.create () in
  let c = Tm.counter ~registry:r "a" in
  Tm.Counter.incr c;
  Tm.Counter.incr ~by:41 c;
  check Alcotest.int "count" 42 (Tm.Counter.value c);
  check Alcotest.bool "get-or-create" true (c == Tm.counter ~registry:r "a");
  Tm.reset r;
  (* reset drops the instruments: the next lookup creates a fresh zero *)
  let c' = Tm.counter ~registry:r "a" in
  check Alcotest.bool "fresh after reset" false (c == c');
  check Alcotest.int "reset" 0 (Tm.Counter.value c')

let test_histogram () =
  let r = Tm.create () in
  let h = Tm.histogram ~registry:r "h" in
  check Alcotest.bool "empty mean is nan" true (Float.is_nan (Tm.Histogram.mean h));
  List.iter (fun v -> Tm.Histogram.observe_int h v) [ 1; 2; 4; 100; 1000 ];
  check Alcotest.int "count" 5 (Tm.Histogram.count h);
  check (Alcotest.float 1e-9) "sum" 1107.0 (Tm.Histogram.sum h);
  check (Alcotest.float 1e-9) "min" 1.0 (Tm.Histogram.min_value h);
  check (Alcotest.float 1e-9) "max" 1000.0 (Tm.Histogram.max_value h);
  let p50 = Tm.Histogram.percentile h 0.5 in
  check Alcotest.bool "p50 within range" true (p50 >= 1.0 && p50 <= 1000.0);
  check Alcotest.bool "p100 clamps to max" true
    (Tm.Histogram.percentile h 1.0 <= 1000.0)

let test_registry_listing () =
  let r = Tm.create () in
  ignore (Tm.counter ~registry:r "z");
  ignore (Tm.counter ~registry:r "a");
  ignore (Tm.histogram ~registry:r "m");
  check
    Alcotest.(list string)
    "counters sorted" [ "a"; "z" ]
    (List.map Tm.Counter.name (Tm.counters r));
  check Alcotest.int "histograms" 1 (List.length (Tm.histograms r));
  (* the summary printer renders without raising *)
  check Alcotest.bool "summary non-empty" true
    (String.length (Format.asprintf "%a" Tm.pp_summary r) > 0)

let test_trace_metrics_bridge () =
  let m = Sherlock_trace.Metrics.create () in
  m.events <- 10;
  m.pairs_considered <- 4;
  m.pairs_capped <- 1;
  m.windows <- 3;
  m.races <- 2;
  m.run_s <- 0.5;
  let r = Tm.create () in
  Sherlock_trace.Metrics.to_registry r m;
  let counter name = Tm.Counter.value (Tm.counter ~registry:r name) in
  check Alcotest.int "events" 10 (counter "trace.events");
  check Alcotest.int "pairs" 4 (counter "trace.pairs_considered");
  check Alcotest.int "capped" 1 (counter "trace.pairs_capped");
  check Alcotest.int "windows" 3 (counter "trace.windows");
  check Alcotest.int "races" 2 (counter "trace.races");
  let h = Tm.histogram ~registry:r "trace.run_s" in
  check Alcotest.int "run_s observed" 1 (Tm.Histogram.count h)

(* --- Perfetto export --- *)

(* Arbitrary events: a mix of every phase with scrambled timestamps and
   possibly-negative complete durations. *)
let arb_events =
  let open QCheck in
  let arb_event =
    map
      (fun (ts, dur, pick, tid) ->
        let ts = abs ts mod 10_000 in
        match pick mod 5 with
        | 0 -> Perfetto.complete ~name:"c" ~ts ~dur ~pid:1 ~tid ()
        | 1 -> Perfetto.instant ~name:"i" ~ts ~pid:1 ~tid ()
        | 2 -> Perfetto.flow_start ~id:(abs dur) ~ts ~pid:1 ~tid ()
        | 3 -> Perfetto.flow_end ~id:(abs dur) ~ts ~pid:1 ~tid ()
        | _ -> Perfetto.thread_name ~pid:1 ~tid "t")
      (quad int (int_range (-50) 5000) int (int_range 0 7))
  in
  list_of_size Gen.(int_range 0 60) arb_event

let prop_prepare_sorted_nonnegative =
  QCheck.Test.make ~name:"prepare: metadata first, sorted ts, dur >= 0"
    ~count:200 arb_events (fun events ->
      let prepared = Perfetto.prepare events in
      List.length prepared = List.length events
      &&
      let rec split_meta = function
        | { Perfetto.ph = Perfetto.Metadata; _ } :: rest -> split_meta rest
        | rest ->
          (* no metadata event may appear after the prefix *)
          List.for_all (fun (e : Perfetto.event) -> e.ph <> Perfetto.Metadata) rest
          &&
          let rec sorted = function
            | (a : Perfetto.event) :: (b : Perfetto.event) :: rest ->
              a.ts <= b.ts && sorted (b :: rest)
            | _ -> true
          in
          sorted rest
      in
      split_meta prepared
      && List.for_all
           (fun (e : Perfetto.event) ->
             match e.ph with Perfetto.Complete d -> d >= 0 | _ -> true)
           prepared)

let prop_of_spans_sorted_nonnegative =
  QCheck.Test.make ~name:"of_spans export: sorted with non-negative durations"
    ~count:50
    QCheck.(int_range 1 5)
    (fun depth ->
      let c = Span.create_collector () in
      Span.set_collector (Some c);
      Fun.protect ~finally:(fun () -> Span.set_collector None) @@ fun () ->
      let rec nest d =
        Span.with_span ~name:(Printf.sprintf "d%d" d) (fun () ->
            if d < depth then nest (d + 1))
      in
      nest 1;
      Span.with_span ~name:"tail" ignore;
      let events = Perfetto.prepare (Perfetto.of_spans c) in
      List.length
        (List.filter (fun (e : Perfetto.event) -> e.ph <> Perfetto.Metadata) events)
      = depth + 1
      && List.for_all
           (fun (e : Perfetto.event) ->
             match e.ph with Perfetto.Complete d -> d >= 0 | _ -> e.ts >= 0)
           events)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_json_escaping () =
  let s =
    Perfetto.to_string
      [
        Perfetto.instant ~name:"quote \" slash \\ newline \n"
          ~args:[ ("k", Perfetto.Str "tab\t") ]
          ~ts:1 ~pid:1 ~tid:1 ();
      ]
  in
  check Alcotest.bool "quote escaped" true (contains s {|quote \" slash|});
  check Alcotest.bool "backslash escaped" true (contains s {|slash \\ newline|});
  check Alcotest.bool "newline escaped" true (contains s {|newline \n|});
  check Alcotest.bool "tab escaped" true (contains s {|tab\t|})

(* --- virtual-time timeline --- *)

let test_timeline_export () =
  let open Sherlock_sim in
  let hooks, finish = Schedule.recorder () in
  let log =
    Runtime.run ~seed:3 ~hooks ~instrument:(Runtime.tracing ()) (fun () ->
        let cell = Heap.cell ~cls:"T" ~field:"x" 0 in
        let t =
          Threadlib.create ~delegate:("T", "Worker") (fun () ->
              Heap.write cell 1)
        in
        Threadlib.start t;
        ignore (Heap.read cell);
        Threadlib.join t)
  in
  let timelines =
    [
      {
        Sherlock_core.Timeline.test_name = "t";
        log;
        schedule = finish ~duration:log.Log.duration;
      };
    ]
  in
  let events =
    Sherlock_core.Timeline.export ~app:"unit" ~plan:Sherlock_core.Perturber.empty
      timelines
  in
  let has ph = List.exists (fun (e : Perfetto.event) -> e.ph = ph) events in
  check Alcotest.bool "has frames/slices" true
    (List.exists
       (fun (e : Perfetto.event) ->
         match e.ph with Perfetto.Complete _ -> true | _ -> false)
       events);
  check Alcotest.bool "names both threads" true
    (List.length
       (List.filter
          (fun (e : Perfetto.event) ->
            e.ph = Perfetto.Metadata && e.name = "thread_name")
          events)
     >= 4);
  (* read and write of T::x race within [near]: at least one flow arrow *)
  check Alcotest.bool "flow start" true
    (List.exists
       (fun (e : Perfetto.event) ->
         match e.ph with Perfetto.Flow_start _ -> true | _ -> false)
       events);
  check Alcotest.bool "flow end" true
    (List.exists
       (fun (e : Perfetto.event) ->
         match e.ph with Perfetto.Flow_end _ -> true | _ -> false)
       events);
  ignore has

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "telemetry"
    [
      ( "spans",
        [
          Alcotest.test_case "well-nested" `Quick test_span_nesting;
          Alcotest.test_case "closes on exception" `Quick test_span_closes_on_exception;
          Alcotest.test_case "attributes" `Quick test_span_attrs;
          Alcotest.test_case "no collector" `Quick test_span_no_collector;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "registry listing" `Quick test_registry_listing;
          Alcotest.test_case "trace bridge" `Quick test_trace_metrics_bridge;
        ] );
      ( "perfetto",
        Alcotest.test_case "json escaping" `Quick test_json_escaping
        :: qcheck
             [ prop_prepare_sorted_nonnegative; prop_of_spans_sorted_nonnegative ] );
      ("timeline", [ Alcotest.test_case "export" `Quick test_timeline_export ]);
    ]
