(* Tests for the TSVD baseline: pair discovery on hand traces and the full
   comparison on the corpus apps that use thread-unsafe collections. *)

open Sherlock_trace
open Sherlock_core
open Sherlock_corpus
module Tsvd = Sherlock_tsvd.Tsvd

let check = Alcotest.check

let ev ?(target = 1) time tid op = Event.make ~time ~tid ~op ~target ()

let mklog events =
  Log.create ~events ~duration:1_000_000 ~threads:4
    ~volatile_addrs:(Hashtbl.create 1)

let add = Opid.write ~cls:Tsvd.unsafe_cls "Add"

let contains = Opid.read ~cls:Tsvd.unsafe_cls "Contains"

let test_pairs_found () =
  let log = mklog [ ev 10 0 add; ev 50 1 contains ] in
  check Alcotest.int "one pair" 1 (List.length (Tsvd.conflicting_pairs log))

let test_pairs_require_mutation () =
  let log = mklog [ ev 10 0 contains; ev 50 1 contains ] in
  check Alcotest.int "reader pair ignored" 0 (List.length (Tsvd.conflicting_pairs log))

let test_pairs_same_thread_ignored () =
  let log = mklog [ ev 10 0 add; ev 50 0 contains ] in
  check Alcotest.int "same thread" 0 (List.length (Tsvd.conflicting_pairs log))

let test_pairs_different_collections_ignored () =
  let log = mklog [ ev ~target:1 10 0 add; ev ~target:2 50 1 contains ] in
  check Alcotest.int "different targets" 0 (List.length (Tsvd.conflicting_pairs log))

let test_pairs_far_apart_ignored () =
  let log = mklog [ ev 10 0 add; ev 3_000_000 1 contains ] in
  check Alcotest.int "beyond near" 0 (List.length (Tsvd.conflicting_pairs ~near:1_000_000 log))

let test_pairs_ignore_plain_fields () =
  let log = mklog [ ev 10 0 (Opid.write ~cls:"C" "f"); ev 50 1 (Opid.read ~cls:"C" "f") ] in
  check Alcotest.int "plain fields out of scope" 0
    (List.length (Tsvd.conflicting_pairs log))

let test_pairs_dedup () =
  (* Two dynamic instances of (Add, Contains) collapse to one static pair;
     the interleaved (Contains, Add) direction is a second distinct pair. *)
  let log =
    mklog [ ev 10 0 add; ev 50 1 contains; ev 110 0 add; ev 150 1 contains ]
  in
  check Alcotest.int "static dedup" 2 (List.length (Tsvd.conflicting_pairs log))

let test_analyze_corpus () =
  let totals = ref (0, 0, 0) in
  List.iter
    (fun (app : App.t) ->
      if app.uses_unsafe_apis then begin
        let subject = App.subject app in
        let result = Orchestrator.infer subject in
        let o = Tsvd.analyze subject result.final in
        let c, t, s = !totals in
        totals :=
          ( c + List.length o.candidate_pairs,
            t + List.length o.tsvd_hb,
            s + List.length o.sherlock_hb );
        check Alcotest.bool (app.id ^ " tsvd subset of candidates") true
          (List.for_all (fun p -> List.mem p o.candidate_pairs) o.tsvd_hb);
        check Alcotest.bool (app.id ^ " sherlock subset of candidates") true
          (List.for_all (fun p -> List.mem p o.candidate_pairs) o.sherlock_hb)
      end)
    (Registry.all ());
  let candidates, tsvd, sherlock = !totals in
  check Alcotest.bool "found candidates" true (candidates >= 2);
  (* The paper's §5.6 shape: SherLock confirms at least as many
     synchronized pairs as TSVD's delay probing. *)
  check Alcotest.bool "sherlock >= tsvd" true (sherlock >= tsvd);
  check Alcotest.bool "tsvd finds some" true (tsvd >= 1)

let () =
  Alcotest.run "tsvd"
    [
      ( "pairs",
        [
          Alcotest.test_case "found" `Quick test_pairs_found;
          Alcotest.test_case "needs mutation" `Quick test_pairs_require_mutation;
          Alcotest.test_case "same thread" `Quick test_pairs_same_thread_ignored;
          Alcotest.test_case "different collections" `Quick
            test_pairs_different_collections_ignored;
          Alcotest.test_case "far apart" `Quick test_pairs_far_apart_ignored;
          Alcotest.test_case "plain fields ignored" `Quick test_pairs_ignore_plain_fields;
          Alcotest.test_case "dedup" `Quick test_pairs_dedup;
        ] );
      ("corpus", [ Alcotest.test_case "analyze" `Slow test_analyze_corpus ]);
    ]
