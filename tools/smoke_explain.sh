#!/bin/sh
# Provenance smoke for the @smoke alias: run one app with
# --provenance-out, then check that
#   (a) the JSON sidecar is valid provenance that `explain --from`
#       renders a non-empty evidence tree from,
#   (b) every verdict section of the tree lists at least one evidence
#       window,
#   (c) explain round-trips the sidecar byte-identically through
#       --json-out, and
#   (d) the --flows export is non-trivial Perfetto JSON.
set -eu

cli=$1
# Dune passes the executable relative to the rule's directory; qualify a
# bare name so the shell does not search PATH for it.
case "$cli" in
*/*) ;;
*) cli="./$cli" ;;
esac
d=$(mktemp -d)
trap 'rm -rf "$d"' EXIT INT TERM

"$cli" run -a App-2 --rounds 2 --provenance-out "$d/prov.json" >/dev/null

if [ ! -s "$d/prov.json" ]; then
  echo "smoke_explain: sidecar missing or empty" >&2
  exit 1
fi
case "$(head -c 32 "$d/prov.json")" in
*sherlock-provenance*) ;;
*)
  echo "smoke_explain: sidecar does not declare the provenance format" >&2
  exit 1
  ;;
esac

"$cli" explain --from "$d/prov.json" --json-out "$d/prov2.json" \
  --flows "$d/flows.json" >"$d/explain.out"

if ! cmp -s "$d/prov.json" "$d/prov2.json"; then
  echo "smoke_explain: explain --json-out does not round-trip the sidecar" >&2
  exit 1
fi

verdicts=$(grep -c "verdict:" "$d/explain.out" || true)
if [ "$verdicts" -lt 1 ]; then
  echo "smoke_explain: evidence tree lists no verdicts" >&2
  exit 1
fi
# Every verdict section must show a non-empty windows branch: the tree
# prints "windows (N)" per verdict, so any "windows (0)" is a failure.
if grep -q "windows (0)" "$d/explain.out"; then
  echo "smoke_explain: a verdict has no evidence windows" >&2
  exit 1
fi
windows=$(grep -c "windows (" "$d/explain.out" || true)
if [ "$windows" -ne "$verdicts" ]; then
  echo "smoke_explain: $verdicts verdicts but $windows windows branches" >&2
  exit 1
fi

# A single-op query must select a strict subset of the full tree.
"$cli" explain --from "$d/prov.json" GetOrAdd >"$d/explain-one.out"
one=$(grep -c "verdict:" "$d/explain-one.out" || true)
if [ "$one" -lt 1 ] || [ "$one" -ge "$verdicts" ]; then
  echo "smoke_explain: op query selected $one of $verdicts verdicts" >&2
  exit 1
fi

case "$(head -c 16 "$d/flows.json")" in
'{"traceEvents":'*) ;;
*)
  echo "smoke_explain: flows export is not trace-event JSON" >&2
  exit 1
  ;;
esac
if ! grep -q '"sherlock evidence"' "$d/flows.json"; then
  echo "smoke_explain: flows export lacks the evidence process" >&2
  exit 1
fi

echo "smoke_explain: $verdicts verdicts explained, all with evidence windows"
