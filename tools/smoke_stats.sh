#!/bin/sh
# Metrics-plane smoke for the @smoke alias: run one app with
# --metrics-out/--log-out, then check that
#   (a) the OpenMetrics file parses under the strict parser (`stats
#       --from` fails on any malformed exposition) and carries the
#       expected counter / gauge / histogram families,
#   (b) the structured log is one JSON object per line and contains the
#       per-round orchestrator events, and
#   (c) `sherlock stats` renders a console summary both from the file
#       and live.
set -eu

cli=$1
# Dune passes the executable relative to the rule's directory; qualify a
# bare name so the shell does not search PATH for it.
case "$cli" in
*/*) ;;
*) cli="./$cli" ;;
esac
d=$(mktemp -d)
trap 'rm -rf "$d"' EXIT INT TERM

"$cli" run -a App-2 --rounds 2 --metrics-out "$d/metrics.om" \
  --log-out "$d/run.jsonl" >/dev/null

# --- OpenMetrics exposition ---
test -s "$d/metrics.om" || {
  echo "smoke_stats: metrics file missing or empty" >&2
  exit 1
}
grep -q '^# EOF$' "$d/metrics.om" || {
  echo "smoke_stats: metrics file lacks the # EOF terminator" >&2
  exit 1
}
for family in \
  sherlock_snapshot_timestamp_seconds \
  sherlock_gc_heap_words \
  sherlock_trace_events_total \
  sherlock_lp_solves_total \
  sherlock_trace_run_s_count; do
  grep -q "^$family " "$d/metrics.om" || {
    echo "smoke_stats: expected family $family missing from exposition" >&2
    exit 1
  }
done
grep -q '_bucket{le="+Inf"}' "$d/metrics.om" || {
  echo "smoke_stats: no histogram buckets in exposition" >&2
  exit 1
}

# --- structured log ---
test -s "$d/run.jsonl" || {
  echo "smoke_stats: structured log missing or empty" >&2
  exit 1
}
bad=$(grep -cv '^{.*}$' "$d/run.jsonl" || true)
if [ "$bad" -ne 0 ]; then
  echo "smoke_stats: $bad log lines are not single JSON objects" >&2
  exit 1
fi
grep -q '"event":"orch.round"' "$d/run.jsonl" || {
  echo "smoke_stats: no orch.round events in the structured log" >&2
  exit 1
}

# --- stats console ---
"$cli" stats --from "$d/metrics.om" >"$d/stats-file.out"
grep -q "lp" "$d/stats-file.out" || {
  echo "smoke_stats: stats --from rendered no LP section" >&2
  exit 1
}
"$cli" stats -a App-2 --rounds 2 >"$d/stats-live.out"
grep -q "pipeline" "$d/stats-live.out" || {
  echo "smoke_stats: live stats rendered no pipeline section" >&2
  exit 1
}

lines=$(wc -l <"$d/run.jsonl" | tr -d ' ')
families=$(grep -c '^# TYPE ' "$d/metrics.om" | tr -d ' ')
echo "smoke_stats: $families metric families exported, $lines structured log lines, stats rendered from file and live"
