#!/bin/sh
# Binary-format smoke for the @smoke alias: dump one app's traces in
# both formats, push the text dumps through `sherlock convert`
# round-trips, and check that
#   (a) text -> binary -> text reproduces each original trace up to
#       line order (the text encoder emits volatile-address lines in
#       hash order), and
#   (b) `solve-trace` answers identically from the text dumps, the
#       binary dumps, and the converted files.
set -eu

cli=$1
# Dune passes the executable relative to the rule's directory; qualify a
# bare name so the shell does not search PATH for it.
case "$cli" in
*/*) ;;
*) cli="./$cli" ;;
esac
d=$(mktemp -d)
trap 'rm -rf "$d"' EXIT INT TERM

"$cli" run -a App-2 --rounds 1 --dump-trace "$d/text" --trace-format text \
  >/dev/null
"$cli" run -a App-2 --rounds 1 --dump-trace "$d/bin" --trace-format binary \
  >/dev/null

mkdir "$d/conv"
for t in "$d"/text/*.trace; do
  base=$(basename "$t" .trace)
  "$cli" convert "$t" "$d/conv/$base.btrace" >/dev/null
  "$cli" convert --to text "$d/conv/$base.btrace" "$d/conv/$base.trace" \
    >/dev/null
  sort "$t" >"$d/a.sorted"
  sort "$d/conv/$base.trace" >"$d/b.sorted"
  if ! cmp -s "$d/a.sorted" "$d/b.sorted"; then
    echo "smoke_convert: text->binary->text round-trip mismatch for $base" >&2
    exit 1
  fi
done

"$cli" solve-trace "$d"/text/*.trace >"$d/solve-text.out"
"$cli" solve-trace "$d"/bin/*.btrace >"$d/solve-bin.out"
"$cli" solve-trace "$d"/conv/*.btrace >"$d/solve-conv.out"
if ! cmp -s "$d/solve-text.out" "$d/solve-bin.out" \
  || ! cmp -s "$d/solve-text.out" "$d/solve-conv.out"; then
  echo "smoke_convert: solve-trace output differs between formats" >&2
  diff "$d/solve-text.out" "$d/solve-bin.out" >&2 || true
  exit 1
fi

n=$(ls "$d"/text/*.trace | wc -l | tr -d ' ')
echo "smoke_convert: $n traces round-tripped, solve-trace output identical"
