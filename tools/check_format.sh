#!/bin/sh
# Formatting gate for the tier-1 path (lib/, bin/, test/): runs
# `ocamlformat --check` when the binary exists, and degrades to a no-op
# (with a notice) where it is not installed — CI containers for this
# repo do not ship it, and the check must never turn its absence into a
# test failure.
set -eu

root=$(dirname "$0")/..

if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "check_format: ocamlformat not installed; skipping format check"
  exit 0
fi

status=0
for f in "$root"/lib/*/*.ml "$root"/lib/*/*.mli "$root"/bin/*.ml "$root"/test/*.ml; do
  [ -e "$f" ] || continue
  if ! ocamlformat --check "$f" >/dev/null 2>&1; then
    echo "check_format: $f is not ocamlformat-clean"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_format: tier-1 sources clean"
fi
exit "$status"
